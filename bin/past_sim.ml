(* Command-line driver for the PAST reproduction experiments.

   `past_sim all` regenerates every table; `past_sim <name>` runs one
   experiment. `--scale` trades sampling effort for time (it sets
   PAST_SCALE for the experiment runners; structural parameters are
   never scaled). `--json` emits the tables as JSON instead of text;
   `--trace N` appends the first N reconstructed route traces when the
   experiment records them. `--jobs N` (or PAST_JOBS; default: the
   runtime's recommended domain count) sizes the worker-domain pool the
   per-row experiment loops fan out over — results are merged in
   submission order, so output is byte-identical for any N. `past_sim
   metrics` runs a small end-to-end workload and dumps the telemetry
   registry snapshot. *)

open Cmdliner
module Domain_pool = Past_stdext.Domain_pool

let experiment_names = List.map fst Past_experiments.Report.all

let scale_arg =
  let doc =
    "Sampling-effort multiplier (lookup counts, trials). 0.2 is a quick smoke pass, 1.0 the \
     EXPERIMENTS.md numbers."
  in
  Arg.(value & opt (some float) None & info [ "s"; "scale" ] ~docv:"FACTOR" ~doc)

let json_arg =
  let doc = "Emit results as JSON (one object per experiment, with its tables) on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_arg =
  let doc =
    "Print the first $(docv) reconstructed route traces (hop-by-hop, with the routing stage \
     that chose each hop). Only experiments that retain their telemetry registry produce \
     traces."
  in
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Size of the worker-domain pool the experiment loops fan out over (default: PAST_JOBS, \
     else the runtime's recommended domain count). Results merge in submission order, so the \
     output is byte-identical for any $(docv)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let apply_scale scale =
  match scale with
  | Some f when f > 0.0 -> Unix.putenv "PAST_SCALE" (string_of_float f)
  | Some _ -> prerr_endline "ignoring non-positive --scale"
  | None -> ()

let apply_jobs jobs =
  match jobs with
  | Some j when j >= 1 -> Domain_pool.set_jobs j
  | Some _ -> prerr_endline "ignoring non-positive --jobs"
  | None -> ()

let monitors_arg =
  let doc =
    "Activate the online invariant monitors (leaf-set symmetry, replica counts, hop bound, \
     storage-quota conservation) in every system the run creates; exit 1 if any monitor \
     records a violation. Equivalent to setting PAST_MONITORS=1."
  in
  Arg.(value & flag & info [ "monitors" ] ~doc)

let apply_monitors monitors = if monitors then Unix.putenv "PAST_MONITORS" "1"

(* Exit nonzero when any monitor in any system (including systems run
   on pool domains) recorded a violation. *)
let check_monitors monitors =
  let module Monitor = Past_telemetry.Monitor in
  if monitors then
    match Monitor.global_violations () with
    | 0 -> prerr_endline "invariant monitors: all green"
    | v ->
      Printf.eprintf "invariant monitors: %d violation(s)\n" v;
      List.iter (fun line -> Printf.eprintf "  %s\n" line) (Monitor.global_summaries ());
      exit 1

let write_chrome_trace ~out registry =
  let module Trace = Past_telemetry.Trace in
  let tracer = Past_telemetry.Registry.tracer registry in
  let oc = open_out out in
  output_string oc (Past_stdext.Json.to_string ~indent:true (Trace.chrome_json tracer));
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s: %d trace event(s), %d span(s), %d route(s)%s\n" out
    (Trace.total_recorded tracer)
    (List.length (Trace.spans tracer))
    (List.length (Trace.routes tracer))
    (match Trace.dropped_total tracer with
    | 0 -> ""
    | d -> Printf.sprintf " (%d dropped: enlarge the ring)" d)

let run_cmd name =
  let doc = Printf.sprintf "Run the %s experiment and print its table(s)." name in
  let f scale jobs json trace monitors =
    apply_scale scale;
    apply_jobs jobs;
    apply_monitors monitors;
    Past_experiments.Report.run_named ~json ~trace name;
    check_monitors monitors
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const f $ scale_arg $ jobs_arg $ json_arg $ trace_arg $ monitors_arg)

let all_cmd =
  let doc = "Run every experiment (regenerates all tables)." in
  let f scale jobs json trace monitors =
    apply_scale scale;
    apply_jobs jobs;
    apply_monitors monitors;
    ignore (Past_experiments.Report.run_all ~json ~trace () : (string * float) list);
    check_monitors monitors
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const f $ scale_arg $ jobs_arg $ json_arg $ trace_arg $ monitors_arg)

let metrics_cmd =
  let doc =
    "Run a small end-to-end PAST workload and dump the telemetry registry snapshot (message \
     counters, routing-stage counters, storage metrics, latency histogram)."
  in
  let f json trace = Past_experiments.Report.metrics ~json ~trace () in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const f $ json_arg $ trace_arg)

(* Dedicated `churn` command: same experiment as `past_sim churn` would
   auto-generate from the registry, plus knobs for the fault process
   itself (which --scale deliberately does not touch). *)
let churn_cmd =
  let module Exp_churn = Past_experiments.Exp_churn in
  let doc =
    "Run the sustained-churn invariant experiment (EXP14): a Poisson crash/rejoin process \
     with continuous availability probes, replica-recovery tracking and repair-cost \
     accounting."
  in
  let rate_arg =
    let doc = "Crash arrivals per simulated time unit (default 0.001)." in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"R" ~doc)
  in
  let duration_arg =
    let doc =
      "Churn horizon in simulated time units (default 1800000 = 30 simulated minutes, \
       multiplied by --scale when not given explicitly)."
    in
    Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"T" ~doc)
  in
  let seed_arg =
    let doc = "RNG seed (default 4); runs are a pure function of it." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write the run's causal trace (operation spans, routes, hops, repair cascades) as \
       Chrome trace-event JSON to $(docv) — open it in Perfetto (ui.perfetto.dev) or \
       chrome://tracing."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let f scale json rate duration seed monitors trace_out =
    apply_scale scale;
    apply_monitors monitors;
    let p = Exp_churn.default_params in
    let p =
      {
        p with
        Exp_churn.rate = Option.value ~default:p.Exp_churn.rate rate;
        duration =
          (match duration with
          | Some d -> d
          | None ->
            Float.max 60_000.0 (p.Exp_churn.duration *. Past_experiments.Report.scale ()));
        seed = Option.value ~default:p.Exp_churn.seed seed;
      }
    in
    let trace_capacity = Option.map (fun _ -> 262_144) trace_out in
    let r = Exp_churn.run ?trace_capacity p in
    let out =
      {
        (Past_experiments.Report.tables
           [
             ( "EXP14: invariants under sustained churn (C5 repair cost, C6 availability)",
               Exp_churn.table r );
             ( "EXP14b: churn time-series (per-window repair traffic, live nodes, probe \
                latency)",
               Exp_churn.series_table r );
           ])
        with
        Past_experiments.Report.trace_registry = Some r.Exp_churn.registry;
      }
    in
    if json then
      print_endline
        (Past_stdext.Json.to_string ~indent:true
           (Past_experiments.Report.json_of_output ~trace:0 "churn" out))
    else Past_experiments.Report.print_output ~trace:0 out;
    Option.iter (fun file -> write_chrome_trace ~out:file r.Exp_churn.registry) trace_out;
    check_monitors monitors
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const f $ scale_arg $ json_arg $ rate_arg $ duration_arg $ seed_arg $ monitors_arg
      $ trace_out_arg)

(* Dedicated `megastore` command: EXP9/EXP10 at millions of files on a
   chosen store backend. Deliberately not part of `all` — a full run
   takes minutes and writes gigabytes of scratch segments. *)
let megastore_cmd =
  let module Exp_storage = Past_experiments.Exp_storage in
  let module Store = Past_core.Store in
  let doc =
    "Run the storage-utilization experiment (EXP9/EXP10, Full policy) at mega scale — \
     default one million insert attempts — and report the C7 envelope plus sustained insert \
     throughput and, on the log backend, segment/compaction statistics."
  in
  let files_arg =
    let doc = "Number of insert attempts (default 1000000)." in
    Arg.(value & opt int 1_000_000 & info [ "files" ] ~docv:"N" ~doc)
  in
  let nodes_arg =
    let doc = "Number of storage nodes (default 100); capacities scale as files/nodes." in
    Arg.(value & opt int 100 & info [ "nodes" ] ~docv:"N" ~doc)
  in
  let store_arg =
    let doc =
      "Store backend: $(b,mem) or $(b,log) (default: PAST_STORE environment variable, else \
       mem)."
    in
    Arg.(value & opt (some (enum [ ("mem", `Mem); ("log", `Log) ])) None & info [ "store" ] ~doc)
  in
  let seed_arg =
    let doc = "RNG seed (default 97); runs are a pure function of it." in
    Arg.(value & opt int 97 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let f json files nodes store seed monitors =
    apply_monitors monitors;
    let store_backend =
      match store with
      | Some `Mem -> Store.Mem
      | Some `Log -> Store.Log { dir = None; segment_target = None }
      | None -> Store.default_backend ()
    in
    let m = Exp_storage.run_mega ~n:nodes ~files ~seed ~store_backend () in
    let out =
      Past_experiments.Report.tables
        [
          ( "EXP9/EXP10 mega: utilization, rejects and insert throughput at scale",
            Exp_storage.mega_table m );
        ]
    in
    if json then
      print_endline
        (Past_stdext.Json.to_string ~indent:true
           (Past_experiments.Report.json_of_output ~trace:0 "megastore" out))
    else Past_experiments.Report.print_output ~trace:0 out;
    check_monitors monitors
  in
  Cmd.v (Cmd.info "megastore" ~doc)
    Term.(const f $ json_arg $ files_arg $ nodes_arg $ store_arg $ seed_arg $ monitors_arg)

(* Dedicated `scale` command: EXP15 at 10^5–10^6 nodes over the
   snapshot-bootstrap builder. Deliberately not part of `all` — the
   top of the sweep takes minutes and gigabytes. *)
let scale_cmd =
  let module Exp_scale = Past_experiments.Exp_scale in
  let doc =
    "Run the mega-scale sweep (EXP15): build overlays at log-spaced sizes with the snapshot \
     bootstrap, route random lookups, and fit hop-count and state-size growth against \
     log_2^b N by least squares. Exits 1 when a fitted slope falls outside its analytic \
     window."
  in
  let ns_arg =
    let doc =
      "Sweep sizes: either $(b,LO..HI) (log-spaced, see --points) or an explicit \
       comma-separated list like $(b,2000,20000,100000)."
    in
    Arg.(value & opt string "2000..100000" & info [ "n"; "sizes" ] ~docv:"SPEC" ~doc)
  in
  let points_arg =
    let doc = "Number of log-spaced sweep points for the LO..HI form (default 5)." in
    Arg.(value & opt int 5 & info [ "points" ] ~docv:"K" ~doc)
  in
  let lookups_arg =
    let doc = "Random lookups per sweep point (default 1000)." in
    Arg.(value & opt int 1_000 & info [ "lookups" ] ~docv:"L" ~doc)
  in
  let tail_arg =
    let doc =
      "Fraction of each overlay joining through the real \194\1672.2 protocol rather than \
       the snapshot (default 0.01)."
    in
    Arg.(value & opt float 0.01 & info [ "tail" ] ~docv:"F" ~doc)
  in
  let seed_arg =
    let doc = "RNG seed (default 15); runs are a pure function of it." in
    Arg.(value & opt int 15 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let tolerance_arg =
    let doc = "Hop-slope tolerance: the fit must lie in [1-TOL, 1+TOL/4] (default 0.45)." in
    Arg.(value & opt float 0.45 & info [ "tolerance" ] ~docv:"TOL" ~doc)
  in
  let parse_ns spec ~points =
    let fail () =
      prerr_endline "bad --n: expected LO..HI or a comma-separated list of sizes";
      exit 2
    in
    let num s = match int_of_string_opt (String.trim s) with Some v when v > 1 -> v | _ -> fail () in
    match String.index_opt spec '.' with
    | Some _ -> (
      match String.split_on_char '.' spec |> List.filter (fun s -> s <> "") with
      | [ lo; hi ] ->
        let lo = num lo and hi = num hi in
        if lo > hi then fail () else Exp_scale.log_spaced ~lo ~hi ~k:(Stdlib.max 2 points)
      | _ -> fail ())
    | None -> (
      match String.split_on_char ',' spec with
      | [] -> fail ()
      | parts -> List.map num parts)
  in
  let f json ns points lookups tail seed tolerance =
    let params =
      {
        Exp_scale.ns = parse_ns ns ~points;
        lookups;
        dynamic_tail = tail;
        rt_samples = 8;
        seed;
        hop_tolerance = tolerance;
      }
    in
    let r = Exp_scale.run params in
    let out =
      Past_experiments.Report.tables
        [
          ( "EXP15: scaling sweep (C1 hops, C3 state vs log_2^b N)",
            Exp_scale.table r );
          ("EXP15: least-squares scaling fits", Exp_scale.fits_table r);
        ]
    in
    if json then
      print_endline
        (Past_stdext.Json.to_string ~indent:true
           (Past_experiments.Report.json_of_output ~trace:0 "scale" out))
    else Past_experiments.Report.print_output ~trace:0 out;
    if not (r.Exp_scale.hop_ok && r.Exp_scale.state_ok) then begin
      prerr_endline "EXP15: fitted scaling slope outside its analytic window";
      exit 1
    end
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const f $ json_arg $ ns_arg $ points_arg $ lookups_arg $ tail_arg $ seed_arg
      $ tolerance_arg)

let trace_cmd =
  let doc =
    "Run a small traced PAST workload (inserts, a crash with repair, cached lookups, a \
     reclaim) and write its full causal trace as Chrome trace-event JSON — open it in \
     Perfetto (ui.perfetto.dev) or chrome://tracing."
  in
  let out_arg =
    let doc = "Output file for the trace-event JSON." in
    Arg.(value & opt string "past_trace.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let f out = Past_experiments.Report.trace_export ~out () in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const f $ out_arg)

let list_cmd =
  let doc = "List available experiments." in
  let f () = List.iter print_endline experiment_names in
  Cmd.v (Cmd.info "list" ~doc) Term.(const f $ const ())

let () =
  let doc = "PAST reproduction: run the paper's experiments on the simulator" in
  let info = Cmd.info "past_sim" ~version:"1.0.0" ~doc in
  let subcommands =
    all_cmd :: list_cmd :: metrics_cmd :: churn_cmd :: megastore_cmd :: scale_cmd :: trace_cmd
    :: List.filter_map
         (fun (name, _) -> if name = "churn" then None else Some (run_cmd name))
         Past_experiments.Report.all
  in
  exit (Cmd.eval (Cmd.group info subcommands))
